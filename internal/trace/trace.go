// Package trace records per-component activity spans, cross-component
// flows and counter tracks on the virtual clock, and exports them in the
// Chrome trace-event format, so a workflow run's timeline (compute,
// staging puts/gets, waits), put→get data-flow arrows and NIC/memory
// counter tracks can be inspected in chrome://tracing or Perfetto (open
// the JSON at https://ui.perfetto.dev).
package trace

import (
	"encoding/json"
	"fmt"
	"sort"

	"github.com/imcstudy/imcstudy/internal/sim"
)

// Span is one activity interval of a component.
type Span struct {
	Component string            `json:"component"`
	Name      string            `json:"name"`
	Start     sim.Time          `json:"start"`
	End       sim.Time          `json:"end"`
	Args      map[string]string `json:"args,omitempty"`
}

// Duration returns the span length.
func (s Span) Duration() sim.Time { return s.End - s.Start }

// FlowPoint is one end of a cross-component flow arrow: a start anchors
// to the span enclosing (Component, T) — e.g. the put that produced a
// block — and the matching end (same ID) anchors to the span that
// consumed it.
type FlowPoint struct {
	ID        uint64   `json:"id"`
	Component string   `json:"component"`
	T         sim.Time `json:"t"`
	End       bool     `json:"end"`
}

// Recorder accumulates spans and flow points. The zero value is ready to
// use; a nil recorder ignores all calls, so call sites need no guards.
type Recorder struct {
	spans []Span
	flows []FlowPoint
}

// Add records one span; calls on a nil recorder are dropped.
func (r *Recorder) Add(component, name string, start, end sim.Time) {
	r.AddSpan(component, name, start, end, nil)
}

// AddSpan records one span with optional args shown in the trace
// viewer's detail pane; calls on a nil recorder are dropped.
func (r *Recorder) AddSpan(component, name string, start, end sim.Time, args map[string]string) {
	if r == nil {
		return
	}
	if end < start {
		end = start
	}
	r.spans = append(r.spans, Span{Component: component, Name: name, Start: start, End: end, Args: args})
}

// FlowStart records the producing end of flow id on component at time t
// (typically the end of a put span).
func (r *Recorder) FlowStart(id uint64, component string, t sim.Time) {
	if r == nil {
		return
	}
	r.flows = append(r.flows, FlowPoint{ID: id, Component: component, T: t})
}

// FlowEnd records the consuming end of flow id on component at time t
// (typically the end of the matching get span).
func (r *Recorder) FlowEnd(id uint64, component string, t sim.Time) {
	if r == nil {
		return
	}
	r.flows = append(r.flows, FlowPoint{ID: id, Component: component, T: t, End: true})
}

// Flows returns the recorded flow points sorted by (ID, end).
func (r *Recorder) Flows() []FlowPoint {
	if r == nil {
		return nil
	}
	out := make([]FlowPoint, len(r.flows))
	copy(out, r.flows)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].ID != out[j].ID {
			return out[i].ID < out[j].ID
		}
		return !out[i].End && out[j].End
	})
	return out
}

// Spans returns the recorded spans sorted by start time (stable across
// runs: the engine is deterministic).
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	out := make([]Span, len(r.spans))
	copy(out, r.spans)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// TotalBy sums span durations per activity name.
func (r *Recorder) TotalBy(name string) sim.Time {
	if r == nil {
		return 0
	}
	var total sim.Time
	for _, s := range r.spans {
		if s.Name == name {
			total += s.Duration()
		}
	}
	return total
}

// CounterSample is one point of a counter track.
type CounterSample struct {
	T sim.Time
	V float64
}

// CounterTrack is a named time-series rendered as a Perfetto counter
// track ("C" events) alongside the span timeline.
type CounterTrack struct {
	Name    string
	Samples []CounterSample
}

// ExportOptions selects the extra event kinds ChromeTraceJSONWith emits
// beyond the span timeline.
type ExportOptions struct {
	// Counters become "C" events, one Perfetto counter track per entry.
	Counters []CounterTrack
}

// chromeEvent is one Chrome trace-event ("X" = complete event).
type chromeEvent struct {
	Name  string            `json:"name"`
	Phase string            `json:"ph"`
	TS    float64           `json:"ts"`  // microseconds
	Dur   float64           `json:"dur"` // microseconds
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Args  map[string]string `json:"args,omitempty"`
}

// chromeMeta names a thread in the trace viewer.
type chromeMeta struct {
	Name  string            `json:"name"`
	Phase string            `json:"ph"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Args  map[string]string `json:"args"`
}

// chromeCounter is one "C" counter event; the viewer draws one counter
// track per name.
type chromeCounter struct {
	Name  string             `json:"name"`
	Phase string             `json:"ph"`
	TS    float64            `json:"ts"`
	PID   int                `json:"pid"`
	Args  map[string]float64 `json:"args"`
}

// chromeFlow is one legacy flow event: "s" starts an arrow, "f" with
// bp:"e" finishes it bound to the enclosing slice. cat+name+id must match
// across the pair.
type chromeFlow struct {
	Name  string  `json:"name"`
	Cat   string  `json:"cat"`
	Phase string  `json:"ph"`
	ID    uint64  `json:"id"`
	TS    float64 `json:"ts"`
	PID   int     `json:"pid"`
	TID   int     `json:"tid"`
	BP    string  `json:"bp,omitempty"`
}

// ChromeTraceJSON renders the spans as a Chrome trace-event array: one
// "thread" per component, virtual seconds mapped to microseconds.
func (r *Recorder) ChromeTraceJSON() ([]byte, error) {
	return r.ChromeTraceJSONWith(ExportOptions{})
}

// ChromeTraceJSONWith renders spans, flow arrows, and the counter tracks
// in opts as one Chrome trace-event array. Output is deterministic:
// spans sort by start time, flow points by (id, end), counter tracks
// keep the caller's order.
func (r *Recorder) ChromeTraceJSONWith(opts ExportOptions) ([]byte, error) {
	spans := r.Spans()
	tids := make(map[string]int)
	var events []any
	tidOf := func(component string) int {
		tid, ok := tids[component]
		if !ok {
			tid = len(tids) + 1
			tids[component] = tid
			events = append(events, chromeMeta{
				Name:  "thread_name",
				Phase: "M",
				PID:   1,
				TID:   tid,
				Args:  map[string]string{"name": component},
			})
		}
		return tid
	}
	for _, s := range spans {
		events = append(events, chromeEvent{
			Name:  s.Name,
			Phase: "X",
			TS:    s.Start * 1e6,
			Dur:   s.Duration() * 1e6,
			PID:   1,
			TID:   tidOf(s.Component),
			Args:  s.Args,
		})
	}
	for _, f := range r.Flows() {
		ev := chromeFlow{
			Name:  "dataflow",
			Cat:   "dataflow",
			Phase: "s",
			ID:    f.ID,
			TS:    f.T * 1e6,
			PID:   1,
			TID:   tidOf(f.Component),
		}
		if f.End {
			ev.Phase = "f"
			ev.BP = "e"
		}
		events = append(events, ev)
	}
	for _, track := range opts.Counters {
		for _, s := range track.Samples {
			events = append(events, chromeCounter{
				Name:  track.Name,
				Phase: "C",
				TS:    s.T * 1e6,
				PID:   1,
				Args:  map[string]float64{"value": s.V},
			})
		}
	}
	buf, err := json.Marshal(events)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return buf, nil
}
