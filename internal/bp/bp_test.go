package bp

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/imcstudy/imcstudy/internal/ndarray"
)

func box(t testing.TB, lo, hi []uint64) ndarray.Box {
	t.Helper()
	b, err := ndarray.NewBox(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestWriteReadRoundTrip(t *testing.T) {
	w := NewWriter(true)
	global := box(t, []uint64{0, 0}, []uint64{4, 8})
	data := make([]float64, 32)
	for i := range data {
		data[i] = float64(i) * 0.5
	}
	whole, err := ndarray.NewDenseBlock(global, data)
	if err != nil {
		t.Fatal(err)
	}
	// Two half-blocks from two "ranks".
	for _, lo := range []uint64{0, 2} {
		sub, err := whole.Sub(box(t, []uint64{lo, 0}, []uint64{lo + 2, 8}))
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Write("field", sub); err != nil {
			t.Fatal(err)
		}
	}
	buf := w.Bytes()

	r, err := NewReader(buf)
	if err != nil {
		t.Fatal(err)
	}
	if vars := r.Vars(); len(vars) != 1 || vars[0] != "field" {
		t.Fatalf("vars = %v", vars)
	}
	if blocks := r.Blocks("field"); len(blocks) != 2 {
		t.Fatalf("blocks = %v", blocks)
	}
	region := box(t, []uint64{1, 2}, []uint64{3, 6})
	got, err := r.Read("field", region)
	if err != nil {
		t.Fatal(err)
	}
	want, err := whole.Sub(region)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Data, want.Data) {
		t.Fatalf("read = %v, want %v", got.Data, want.Data)
	}
}

func TestStatsRecorded(t *testing.T) {
	w := NewWriter(true)
	b := box(t, []uint64{0}, []uint64{4})
	blk, err := ndarray.NewDenseBlock(b, []float64{1, -3, 5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write("v", blk); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(w.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	s, err := r.StatsOf("v", 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Min != -3 || s.Max != 5 || math.Abs(s.Avg-1) > 1e-12 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestSyntheticBlocksIndexOnly(t *testing.T) {
	w := NewWriter(false)
	b := box(t, []uint64{0}, []uint64{1 << 20})
	if err := w.Write("v", ndarray.NewSyntheticBlock(b)); err != nil {
		t.Fatal(err)
	}
	buf := w.Bytes()
	// The payload is index-only: far smaller than 8 MB of data.
	if len(buf) > 1024 {
		t.Fatalf("synthetic file = %d bytes, want index-only", len(buf))
	}
	r, err := NewReader(buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Read("v", b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dense() {
		t.Fatal("synthetic read must stay synthetic")
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader([]byte("not a bp file, clearly")); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("error = %v, want ErrBadMagic", err)
	}
	if _, err := NewReader([]byte{1}); !errors.Is(err, ErrTruncated) {
		t.Fatalf("error = %v, want ErrTruncated", err)
	}
	// Corrupt the footer of a valid file.
	w := NewWriter(false)
	b := box(t, []uint64{0}, []uint64{2})
	blk, _ := ndarray.NewDenseBlock(b, []float64{1, 2})
	if err := w.Write("v", blk); err != nil {
		t.Fatal(err)
	}
	buf := w.Bytes()
	buf[len(buf)-1] ^= 0xFF
	if _, err := NewReader(buf); err == nil {
		t.Fatal("corrupt footer accepted")
	}
}

func TestReadUnknownVar(t *testing.T) {
	w := NewWriter(false)
	b := box(t, []uint64{0}, []uint64{2})
	blk, _ := ndarray.NewDenseBlock(b, []float64{1, 2})
	if err := w.Write("v", blk); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(w.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read("nope", b); !errors.Is(err, ErrVarNotFound) {
		t.Fatalf("error = %v, want ErrVarNotFound", err)
	}
}

// Property: any set of random 1-D rank slabs survives a file round trip
// and reassembles to the original array.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := uint64(rng.Intn(64) + 8)
		global := ndarray.WholeArray([]uint64{n})
		data := make([]float64, n)
		for i := range data {
			data[i] = rng.NormFloat64()
		}
		whole, err := ndarray.NewDenseBlock(global, data)
		if err != nil {
			return false
		}
		parts := rng.Intn(4) + 1
		boxes, err := ndarray.SplitAlong(global, 0, parts)
		if err != nil {
			return false
		}
		w := NewWriter(rng.Intn(2) == 0)
		for _, bx := range boxes {
			sub, err := whole.Sub(bx)
			if err != nil {
				return false
			}
			if err := w.Write("v", sub); err != nil {
				return false
			}
		}
		r, err := NewReader(w.Bytes())
		if err != nil {
			return false
		}
		got, err := r.Read("v", global)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got.Data, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Decoding arbitrary mutations of a valid file must never panic.
func TestReaderMutationNeverPanics(t *testing.T) {
	w := NewWriter(true)
	b := box(t, []uint64{0, 0}, []uint64{4, 4})
	data := make([]float64, 16)
	blk, err := ndarray.NewDenseBlock(b, data)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write("v", blk); err != nil {
		t.Fatal(err)
	}
	buf := w.Bytes()
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 500; trial++ {
		mut := append([]byte(nil), buf...)
		for k := 0; k < rng.Intn(6)+1; k++ {
			mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on mutated file: %v", r)
				}
			}()
			r, err := NewReader(mut)
			if err != nil {
				return
			}
			_, _ = r.Read("v", b)
		}()
	}
}
