package workflow

import (
	"github.com/imcstudy/imcstudy/internal/gpu"
	"github.com/imcstudy/imcstudy/internal/hpc"
	"github.com/imcstudy/imcstudy/internal/sim"
)

// attachGPUs equips every simulation and analytics node with an
// accelerator when the run is GPU-resident.
func attachGPUs(cfg Config, m *hpc.Machine, lay *layout) (map[*hpc.Node]*gpu.Device, error) {
	if cfg.GPU == GPUOff {
		return nil, nil
	}
	spec := gpu.TitanK20X()
	if cfg.GPU == GPUDirect {
		spec = gpu.FutureNVLink()
	}
	devices := make(map[*hpc.Node]*gpu.Device)
	for _, pool := range [][]*hpc.Node{lay.simNodes, lay.anaNodes} {
		for _, node := range pool {
			if _, ok := devices[node]; ok {
				continue
			}
			dev, err := gpu.Attach(m, node, spec)
			if err != nil {
				return nil, err
			}
			devices[node] = dev
		}
	}
	return devices, nil
}

// gpuOut pays the device-side cost of exporting bytes before a put:
// a PCIe D2H copy when host-staged, an NVLink traversal when direct.
func gpuOut(p *sim.Proc, cfg Config, devices map[*hpc.Node]*gpu.Device, node *hpc.Node, bytes int64) error {
	return gpuMove(p, cfg, devices, node, bytes)
}

// gpuIn pays the device-side cost of importing bytes after a get.
func gpuIn(p *sim.Proc, cfg Config, devices map[*hpc.Node]*gpu.Device, node *hpc.Node, bytes int64) error {
	return gpuMove(p, cfg, devices, node, bytes)
}

func gpuMove(p *sim.Proc, cfg Config, devices map[*hpc.Node]*gpu.Device, node *hpc.Node, bytes int64) error {
	if cfg.GPU == GPUOff || bytes == 0 {
		return nil
	}
	dev := devices[node]
	if dev == nil {
		return nil
	}
	if cfg.GPU == GPUDirect {
		return dev.TransferDirect(p, bytes)
	}
	return dev.CopyD2H(p, bytes)
}
