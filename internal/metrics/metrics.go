// Package metrics is the testbed's virtual-clock telemetry registry:
// counters, gauges, histograms and time-series sampled on the simulation
// clock. It is the quantitative companion to trace.Recorder — where the
// recorder answers "when did each rank do what", the registry answers
// "how much": NIC utilization, per-collective MPI bytes, staging-server
// object counts and index sizes, memory tracks.
//
// Two properties shape the design:
//
//   - Near-zero cost when disabled. Every accessor on a nil *Registry
//     returns a nil instrument, and every method on a nil instrument is a
//     no-op — the same pattern as trace.Recorder — so instrumented hot
//     paths pay one nil check when telemetry is off. Call sites that
//     would allocate building a metric name should guard with a plain
//     `if reg != nil`.
//
//   - Deterministic encoding. The discrete-event engine is deterministic,
//     so two runs of the same configuration produce identical metric
//     values; EncodeJSON and EncodeCSV emit them in sorted order so the
//     encoded reports are byte-identical as well.
//
// The package deliberately imports nothing from the rest of the testbed
// (virtual time is a plain float64), so every layer — sim, hpc,
// transport, mpi, the staging models, memprof — can record into it.
package metrics

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Time is a virtual-clock timestamp in seconds (mirrors sim.Time without
// importing it).
type Time = float64

// Counter is a monotonically-increasing value.
type Counter struct {
	v float64
}

// Add increases the counter; calls on a nil counter are dropped.
func (c *Counter) Add(d float64) {
	if c == nil {
		return
	}
	c.v += d
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a value that can move both ways; it remembers its peak. A
// sampled gauge (see Registry.SampledGauge) also appends every change to
// a same-named time-series, producing a Perfetto counter track.
type Gauge struct {
	r      *Registry
	v      float64
	peak   float64
	series *Series
}

// Set assigns the gauge; calls on a nil gauge are dropped.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v = v
	if v > g.peak {
		g.peak = v
	}
	if g.series != nil {
		g.series.Append(g.r.now(), g.v)
	}
}

// Add moves the gauge by d.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	g.Set(g.v + d)
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Peak returns the maximum value ever set (0 on nil).
func (g *Gauge) Peak() float64 {
	if g == nil {
		return 0
	}
	return g.peak
}

// Histogram summarizes a stream of observations (count, sum, min, max).
type Histogram struct {
	count    int64
	sum      float64
	min, max float64
}

// Observe records one value; calls on a nil histogram are dropped.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Sample is one point of a time-series.
type Sample struct {
	T Time    `json:"t"`
	V float64 `json:"v"`
}

// Series is a time-series of samples on the virtual clock. Consecutive
// samples at the same instant coalesce (the last value wins), which
// keeps rate-recomputation storms from bloating the series.
type Series struct {
	samples []Sample
}

// Append records v at time t; calls on a nil series are dropped.
func (s *Series) Append(t Time, v float64) {
	if s == nil {
		return
	}
	if n := len(s.samples); n > 0 && s.samples[n-1].T == t {
		s.samples[n-1].V = v
		return
	}
	if len(s.samples) == cap(s.samples) {
		// Double explicitly: large series otherwise hit the runtime's
		// ~1.25x growth and spend their time in memmove.
		next := make([]Sample, len(s.samples), max(64, 2*cap(s.samples)))
		copy(next, s.samples)
		s.samples = next
	}
	s.samples = append(s.samples, Sample{T: t, V: v})
}

// Samples returns a copy of the series.
func (s *Series) Samples() []Sample {
	if s == nil {
		return nil
	}
	out := make([]Sample, len(s.samples))
	copy(out, s.samples)
	return out
}

// Len returns the number of samples.
func (s *Series) Len() int {
	if s == nil {
		return 0
	}
	return len(s.samples)
}

// Registry owns all instruments of one run. A nil *Registry is a valid
// disabled registry: every accessor returns nil and every recording is
// dropped.
type Registry struct {
	mu         sync.Mutex
	nowFn      func() Time
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	series     map[string]*Series
}

// NewRegistry returns a registry stamping series samples with now
// (typically sim.Engine.Now). A nil now function pins the clock at zero.
func NewRegistry(now func() Time) *Registry {
	if now == nil {
		now = func() Time { return 0 }
	}
	return &Registry{
		nowFn:      now,
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		series:     make(map[string]*Series),
	}
}

func (r *Registry) now() Time {
	if r == nil {
		return 0
	}
	return r.nowFn()
}

// Counter returns (creating if needed) the named counter; nil on a nil
// registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{r: r}
		r.gauges[name] = g
	}
	return g
}

// SampledGauge returns the named gauge with time-series sampling
// attached: every Set/Add also appends to the same-named series, which
// the trace exporter renders as a Perfetto counter track.
func (r *Registry) SampledGauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g := r.Gauge(name)
	if g.series == nil {
		g.series = r.Series(name)
	}
	return g
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Series returns (creating if needed) the named time-series.
func (r *Registry) Series(name string) *Series {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.series[name]
	if !ok {
		s = &Series{}
		r.series[name] = s
	}
	return s
}

// Sample appends v to the named series at the current virtual time.
func (r *Registry) Sample(name string, v float64) {
	if r == nil {
		return
	}
	r.Series(name).Append(r.now(), v)
}

// SeriesNames returns every series name, sorted.
func (r *Registry) SeriesNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.series))
	for name := range r.series {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// gaugeOut / histOut are the encoded forms.
type gaugeOut struct {
	Value float64 `json:"value"`
	Peak  float64 `json:"peak"`
}

type histOut struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
}

// Snapshot is the encodable state of a registry.
type Snapshot struct {
	Counters   map[string]float64  `json:"counters"`
	Gauges     map[string]gaugeOut `json:"gauges"`
	Histograms map[string]histOut  `json:"histograms"`
	Series     map[string][]Sample `json:"series"`
}

// Snapshot captures the current state. The maps encode deterministically:
// encoding/json sorts map keys.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]float64{},
		Gauges:     map[string]gaugeOut{},
		Histograms: map[string]histOut{},
		Series:     map[string][]Sample{},
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		snap.Counters[name] = c.v
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = gaugeOut{Value: g.v, Peak: g.peak}
	}
	//imclint:deterministic -- per-key pure copy into a map; Mean reads only the histogram and encoders emit keys sorted
	for name, h := range r.histograms {
		snap.Histograms[name] = histOut{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max, Mean: h.Mean()}
	}
	//imclint:deterministic -- per-key pure copy into a map; Samples reads only the series and encoders emit keys sorted
	for name, s := range r.series {
		snap.Series[name] = s.Samples()
	}
	return snap
}

// EncodeJSON renders the registry as indented JSON. Two runs of the same
// deterministic simulation produce byte-identical output.
func (r *Registry) EncodeJSON() ([]byte, error) {
	buf, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return nil, fmt.Errorf("metrics: %w", err)
	}
	return append(buf, '\n'), nil
}

// EncodeCSV renders the registry as `kind,name,field,value` rows, sorted
// by (kind, name, field); series samples become one row per point in
// time order. Byte-identical across runs of the same configuration.
func (r *Registry) EncodeCSV() []byte {
	snap := r.Snapshot()
	var b strings.Builder
	b.WriteString("kind,name,field,value\n")
	row := func(kind, name, field string, v float64) {
		b.WriteString(kind)
		b.WriteByte(',')
		b.WriteString(csvEscape(name))
		b.WriteByte(',')
		b.WriteString(field)
		b.WriteByte(',')
		b.WriteString(formatFloat(v))
		b.WriteByte('\n')
	}
	for _, name := range sortedKeys(snap.Counters) {
		row("counter", name, "value", snap.Counters[name])
	}
	for _, name := range sortedKeys(snap.Gauges) {
		g := snap.Gauges[name]
		row("gauge", name, "value", g.Value)
		row("gauge", name, "peak", g.Peak)
	}
	for _, name := range sortedKeys(snap.Histograms) {
		h := snap.Histograms[name]
		row("histogram", name, "count", float64(h.Count))
		row("histogram", name, "sum", h.Sum)
		row("histogram", name, "min", h.Min)
		row("histogram", name, "max", h.Max)
		row("histogram", name, "mean", h.Mean)
	}
	for _, name := range sortedKeys(snap.Series) {
		for _, s := range snap.Series[name] {
			row("series", name, formatFloat(s.T), s.V)
		}
	}
	return []byte(b.String())
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// csvEscape guards metric names containing commas or quotes (none of the
// testbed's do, but reports must stay parseable regardless).
func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}
